//! Data discovery and friends — the "wide-ranging area" tour from the
//! paper's introduction: table search over a data lake, schema matching
//! between found tables, connector-mediated (privacy-metered) data access,
//! and anomaly detection — all on the same system surface.
//!
//! ```text
//! cargo run --release -p lingua-tasks --example data_discovery
//! ```

use lingua_core::optimizer::TabularConnector;
use lingua_core::ExecContext;
use lingua_dataset::query::Catalog;
use lingua_dataset::world::WorldSpec;
use lingua_dataset::{ColumnType, Record, Schema, Table, Value};
use lingua_llm_sim::SimLlm;
use lingua_tasks::anomaly;
use lingua_tasks::schema_match;
use lingua_tasks::table_search::TableIndex;
use std::sync::Arc;

fn main() {
    println!("=== Lingua Manga: data discovery, schema matching, connectors, anomalies ===\n");
    let world = WorldSpec::generate(17);
    let llm = Arc::new(SimLlm::with_seed(&world, 17));
    let mut ctx = ExecContext::new(llm);

    // A small "data lake" built from the world.
    let tables = build_lake(&world);
    let refs: Vec<&Table> = tables.iter().collect();

    // 1. Data discovery: natural-language table search over LLM embeddings.
    let index = TableIndex::build(&refs, &mut ctx);
    let query = "which table lists products with their manufacturers and prices?";
    println!("> search: {query}");
    for (name, score) in index.search(query, &mut ctx).into_iter().take(3) {
        println!("  {score:.3}  {name}");
    }
    println!();

    // 2. Schema matching between the catalogue and a differently-named feed.
    let left: Vec<String> = tables[0].schema().names().map(String::from).collect();
    let right =
        vec!["title".to_string(), "maker".to_string(), "cost".to_string(), "details".to_string()];
    println!("> schema match {left:?} <-> {right:?}");
    for m in schema_match::match_schemas(&left, &right, &mut ctx) {
        println!("  {} -> {}", m.left, m.right);
    }
    println!();

    // 3. Connector-mediated access: the LLM can only see allowlisted slices.
    let mut catalog = Catalog::new();
    catalog.register(tables[0].clone());
    let mut connector =
        TabularConnector::new(catalog).allow_prefix("SELECT name, price FROM products");
    let approved = connector.fetch("SELECT name, price FROM products WHERE price < 50").unwrap();
    println!("> connector: approved query returned {} row(s)", approved.len());
    let denied = connector.fetch("SELECT * FROM products");
    println!("> connector: `SELECT *` denied: {}", denied.is_err());
    let meter = connector.meter();
    println!(
        "> exposure meter: {} queries, {} denied, {} rows / {} bytes crossed the boundary\n",
        meter.queries, meter.queries_denied, meter.rows_exposed, meter.bytes_exposed
    );

    // 4. Anomaly detection on the price column.
    let anomalies = anomaly::detect_all(&tables[0], 6.0);
    println!("> anomaly scan: {} outlier cell(s)", anomalies.len());
    for a in anomalies.iter().take(3) {
        println!(
            "  row {} column {} value {} (robust z = {:.1})",
            a.row, a.column, a.value, a.score
        );
    }
}

fn build_lake(world: &WorldSpec) -> Vec<Table> {
    // Products (with one planted price anomaly).
    let mut products = Table::new(
        "products",
        Schema::new(vec![
            ("name".into(), ColumnType::Str),
            ("manufacturer".into(), ColumnType::Str),
            ("price".into(), ColumnType::Float),
            ("description".into(), ColumnType::Str),
        ]),
    );
    for p in world.products.iter().take(60) {
        products
            .push(Record::new(vec![
                Value::Str(p.name.clone()),
                Value::Str(p.manufacturer.clone()),
                Value::Float(p.price),
                Value::Str(p.description.clone()),
            ]))
            .unwrap();
    }
    products.rows_mut()[7].set(2, Value::Float(99999.0)); // the anomaly

    let mut beers = Table::new("beers", Schema::of_names(["beer_name", "brewery", "style", "abv"]));
    for b in world.beers.iter().take(40) {
        beers
            .push(Record::new(vec![
                Value::Str(b.name.clone()),
                Value::Str(b.brewery.clone()),
                Value::Str(b.style.clone()),
                Value::Float(b.abv),
            ]))
            .unwrap();
    }

    let mut restaurants =
        Table::new("restaurants", Schema::of_names(["name", "addr", "city", "phone", "cuisine"]));
    for r in world.restaurants.iter().take(40) {
        restaurants
            .push(Record::new(vec![
                Value::Str(r.name.clone()),
                Value::Str(r.addr.clone()),
                Value::Str(r.city.clone()),
                Value::Str(r.phone.clone()),
                Value::Str(r.cuisine.clone()),
            ]))
            .unwrap();
    }
    vec![products, beers, restaurants]
}
