//! Streaming deduplication quickstart: a seeded synthetic product stream
//! flows through sliding event-time windows; each arriving record is
//! compared only against its own window (incremental blocking — O(window)
//! work per record), and when the watermark closes a window, one serve job
//! judges its candidate pairs with the LLM and emits a match report.
//!
//! ```text
//! cargo run --release -p lingua-stream --example stream_dedup
//! ```

use lingua_core::ContextFactory;
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{SimLlm, SimLlmConfig, TokenPricing};
use lingua_serve::{ServeConfig, StreamTuning};
use lingua_stream::{StreamConfig, StreamEngine, StreamSource, SyntheticSource};
use std::sync::Arc;

fn main() {
    println!("=== Lingua Manga: streaming dedup over sliding windows ===\n");

    const SEED: u64 = 42;
    const RECORDS: usize = 1500;

    let world = WorldSpec::generate(SEED);
    let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed: SEED, ..Default::default() }));
    let mut source = SyntheticSource::with_seed(SEED);
    let schema = source.schema().clone();

    // Sliding windows: 64 event-time ticks long, advancing every 32, so each
    // record belongs to two windows once the stream warms up. The watermark
    // trails the frontier by 8 ticks to absorb out-of-order arrivals.
    let config = StreamConfig {
        tuning: StreamTuning { window: 64, slide: 32, watermark_interval: 8 },
        allowed_lateness: 8,
        serve: ServeConfig { workers: Some(4), ..ServeConfig::default() },
        ..StreamConfig::default()
    };
    let factory = ContextFactory::new(Arc::clone(&llm) as Arc<dyn lingua_llm_sim::LlmService>);
    let mut engine =
        StreamEngine::start(factory, schema, config).expect("valid streaming configuration");

    println!("> ingesting {RECORDS} records (duplicates arrive within a bounded lag)...\n");
    for item in source.take_records(RECORDS) {
        engine.ingest(item).expect("stream ingest");
    }

    let reports = engine.finish().expect("drain the stream");
    for report in &reports {
        println!("{}", report.summary());
    }

    let snapshot = engine.metrics();
    let pricing = TokenPricing::default();
    let job_usage = engine.server_metrics().llm;
    println!("\n{}", snapshot.report());
    println!(
        "cost: ${:.4} across {} window jobs (inline ${:.4})",
        job_usage.cost_usd(&pricing),
        reports.len(),
        snapshot.inline_llm.cost_usd(&pricing),
    );
    println!(
        "incremental work: {} blocking probes for {} records — bounded by window \
         occupancy, not stream length",
        snapshot.comparisons, snapshot.ingested,
    );

    assert!(snapshot.record_conservation_holds());
    assert!(snapshot.window_conservation_holds());
    engine.shutdown();
    println!("\nconservation laws hold; engine shut down cleanly.");
}
