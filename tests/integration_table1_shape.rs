//! Shape assertions for Table 1: the method *ordering* the paper reports must
//! reproduce — Ditto is the supervised ceiling, FMs trails everything, and
//! Lingua Manga closes most of the gap with a handful of labels.
//!
//! Run with `--release` for speed (`cargo test --release`); in debug builds
//! the LLM judging path is slow but still completes.

use lingua_core::ExecContext;
use lingua_dataset::generators::er::{generate, ErDataset};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use lingua_tasks::er::ditto::DittoMatcher;
use lingua_tasks::er::evaluate;
use lingua_tasks::er::fms::FmsMatcher;
use lingua_tasks::er::lingua::{LinguaErConfig, LinguaMatcher};
use lingua_tasks::er::magellan::MagellanMatcher;
use std::sync::Arc;

/// Mean F1 per method over a couple of seeds (keeps single-split noise down
/// while staying fast enough for CI).
fn run(dataset: ErDataset) -> (f64, f64, f64, f64) {
    let seeds = 2u64;
    let (mut magellan, mut ditto, mut fms, mut lingua) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..seeds {
        let world = WorldSpec::generate(500 + seed);
        let split = generate(&world, dataset, 31 + seed);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 500 + seed)));
        let mut m = MagellanMatcher::train(&split, seed);
        magellan += evaluate(&mut m, &split, &mut ctx).f1();
        let mut d = DittoMatcher::train(&split, seed);
        ditto += evaluate(&mut d, &split, &mut ctx).f1();
        fms += evaluate(&mut FmsMatcher, &split, &mut ctx).f1();
        let mut l = LinguaMatcher::build(&split.schema, &split.train, &LinguaErConfig::default());
        lingua += evaluate(&mut l, &split, &mut ctx).f1();
    }
    let n = seeds as f64;
    (magellan / n, ditto / n, fms / n, lingua / n)
}

#[test]
fn itunes_amazon_ordering_matches_the_paper() {
    let (magellan, ditto, fms, lingua) = run(ErDataset::ItunesAmazon);
    // Paper: Ditto 97.1 > LM 92.0 ≈ Magellan 91.2 >> FMs 65.9.
    assert!(ditto > fms + 0.15, "ditto {ditto} vs fms {fms}");
    assert!(lingua > fms + 0.10, "lingua {lingua} vs fms {fms}");
    assert!(fms < 0.85, "fms should collapse on iTunes, got {fms}");
    assert!(lingua > 0.80, "lingua {lingua}");
    assert!(magellan > 0.85, "magellan {magellan}");
}

#[test]
fn beer_ordering_matches_the_paper() {
    let (_, ditto, fms, lingua) = run(ErDataset::BeerAdvoRateBeer);
    // Paper: Ditto 94.4 > LM 89.7 >> Magellan 78.8 ≈ FMs 78.6.
    assert!(ditto >= lingua - 0.05, "ditto {ditto} vs lingua {lingua}");
    assert!(lingua > fms, "lingua {lingua} vs fms {fms}");
    assert!(fms < 0.90, "fms {fms}");
}

#[test]
fn fodors_zagats_is_easy_for_supervised_methods() {
    let (magellan, ditto, fms, lingua) = run(ErDataset::FodorsZagats);
    // Paper: Magellan = Ditto = 100, LM 95.7, FMs 87.2.
    assert!(magellan > 0.97, "magellan {magellan}");
    assert!(ditto > 0.95, "ditto {ditto}");
    assert!(lingua > fms, "lingua {lingua} vs fms {fms}");
    assert!(lingua > 0.90, "lingua {lingua}");
}

#[test]
fn lingua_label_budget_is_tiny() {
    // The whole point: Lingua Manga consumed 4 in-context examples, Ditto
    // trained on hundreds of labeled pairs.
    let config = LinguaErConfig::default();
    assert!(config.examples <= 8);
    let world = WorldSpec::generate(503);
    let split = generate(&world, ErDataset::BeerAdvoRateBeer, 3);
    assert!(split.train.len() > 200, "supervised label pool is large: {}", split.train.len());
}
