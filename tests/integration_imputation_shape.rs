//! Shape assertions for the §4.3 imputation comparison: ordering and the
//! 1/6-LLM-call economy.

use lingua_core::ExecContext;
use lingua_dataset::generators::imputation::{generate, training_catalogue};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use lingua_tasks::imputation::holoclean::HoloCleanImputer;
use lingua_tasks::imputation::imp::ImpImputer;
use lingua_tasks::imputation::lingua::{register_tools, LinguaImputer};
use lingua_tasks::imputation::llm_only::{FmsImputer, LlmOnlyImputer};
use lingua_tasks::imputation::{evaluate, ImputationOutcome};
use std::sync::Arc;

struct Results {
    holoclean: ImputationOutcome,
    imp: ImputationOutcome,
    fms: ImputationOutcome,
    llm_only: ImputationOutcome,
    lingua: ImputationOutcome,
}

fn run(seed: u64) -> Results {
    let world = WorldSpec::generate(700 + seed);
    let benchmark = generate(&world, seed);

    let fresh_ctx = || ExecContext::new(Arc::new(SimLlm::with_seed(&world, 700 + seed)));

    let mut ctx = fresh_ctx();
    let catalogue = training_catalogue(&world, 500);
    let mut holoclean = HoloCleanImputer::train(
        catalogue.iter().map(|(n, d, m)| (n.as_str(), d.as_str(), m.as_str())),
    );
    let holoclean = evaluate(&mut holoclean, &benchmark, &mut ctx);

    let mut ctx = fresh_ctx();
    let catalogue = training_catalogue(&world, 4000);
    let mut imp = ImpImputer::train(&catalogue);
    let imp = evaluate(&mut imp, &benchmark, &mut ctx);

    let mut ctx = fresh_ctx();
    let fms = evaluate(&mut FmsImputer, &benchmark, &mut ctx);

    let mut ctx = fresh_ctx();
    let mut llm_only = LlmOnlyImputer::new(benchmark.vocabulary.clone());
    let llm_only = evaluate(&mut llm_only, &benchmark, &mut ctx);

    let mut ctx = fresh_ctx();
    register_tools(&mut ctx, &benchmark.vocabulary);
    let mut lingua = LinguaImputer::build(&mut ctx).expect("validation converges");
    let lingua = evaluate(&mut lingua, &benchmark, &mut ctx);

    Results { holoclean, imp, fms, llm_only, lingua }
}

#[test]
fn method_ordering_matches_the_paper() {
    let r = run(0);
    // Paper ordering: HoloClean 16.2 << FMs 84.6 < LLM-only 93.92 <= LM 94.48 <= IMP 96.5-ish.
    assert!(r.holoclean.accuracy() < 0.30, "holoclean {}", r.holoclean.accuracy());
    assert!(
        r.fms.accuracy() > r.holoclean.accuracy() + 0.4,
        "fms {} vs holoclean {}",
        r.fms.accuracy(),
        r.holoclean.accuracy()
    );
    assert!(
        r.llm_only.accuracy() > r.fms.accuracy() + 0.05,
        "llm_only {} vs fms {}",
        r.llm_only.accuracy(),
        r.fms.accuracy()
    );
    assert!(
        r.lingua.accuracy() >= r.llm_only.accuracy() - 0.01,
        "lingua {} vs llm_only {}",
        r.lingua.accuracy(),
        r.llm_only.accuracy()
    );
    assert!(r.imp.accuracy() > 0.90, "imp {}", r.imp.accuracy());
    assert!(r.lingua.accuracy() > 0.88, "lingua {}", r.lingua.accuracy());
}

#[test]
fn llm_call_economy_is_about_one_sixth() {
    let r = run(1);
    assert_eq!(r.holoclean.llm_calls, 0);
    assert_eq!(r.imp.llm_calls, 0);
    assert!(r.llm_only.llm_calls as usize >= r.llm_only.total);
    let ratio = r.lingua.llm_calls as f64 / r.llm_only.llm_calls as f64;
    assert!((0.08..0.30).contains(&ratio), "lingua/llm_only call ratio {ratio} (paper: ~1/6)");
}
