//! Cross-crate integration for the optimizer trio: Validator repairing a
//! genuinely buggy generation, Simulator taking over a live stream, and the
//! Connectors enforcing + metering data exposure.

use lingua_core::modules::{LlmModule, LlmgcModule, Module, PromptBuilder};
use lingua_core::optimizer::{
    Simulated, SimulatorConfig, StudentKind, TabularConnector, TestCase, TextConnector,
    ValidationOutcome, Validator,
};
use lingua_core::validation::OutputValidator;
use lingua_core::{Data, ExecContext};
use lingua_dataset::generators::names::{generate, NamesConfig};
use lingua_dataset::query::Catalog;
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{Calibration, CodeGenSpec, LlmService, SimLlm, SimLlmConfig};
use std::sync::Arc;

fn str_list(items: &[&str]) -> Data {
    Data::List(items.iter().map(|s| Data::Str(s.to_string())).collect())
}

#[test]
fn validator_repairs_every_forced_bug() {
    let world = WorldSpec::generate(800);
    for trial in 0..8u64 {
        let llm = Arc::new(SimLlm::new(
            &world,
            SimLlmConfig {
                seed: 800 + trial,
                calibration: Calibration { codegen_bug_rate: 1.0, ..Default::default() },
                ..Default::default()
            },
        ));
        let mut ctx = ExecContext::new(llm);
        let spec = CodeGenSpec {
            task: "tokenize the text into words".into(),
            function_name: "process".into(),
            hints: vec![],
        };
        let mut module = LlmgcModule::generate("tok", spec, &ctx).unwrap();
        assert!(module.generation.as_ref().unwrap().bug.is_some());
        let validator = Validator::new(vec![
            TestCase::new(Data::Str("Hello, world!".into()), str_list(&["Hello", "world"])),
            TestCase::new(Data::Str("I saw a cat".into()), str_list(&["I", "saw", "a", "cat"])),
            TestCase::new(Data::Null, Data::List(vec![])),
        ])
        .with_budgets(6, 3);
        let report = validator.validate_and_fix(&mut module, &mut ctx).unwrap();
        assert_eq!(report.outcome, ValidationOutcome::Passed, "trial {trial}: {report:?}");
        // The installed program genuinely passes.
        assert!(validator.evaluate(&mut module, &mut ctx).is_empty());
    }
}

#[test]
fn simulator_cuts_llm_calls_on_a_real_tagging_stream() {
    let world = WorldSpec::generate(801);
    let corpus = generate(&world, &NamesConfig { passages: 250, ..Default::default() }, 3);
    let llm = Arc::new(SimLlm::with_seed(&world, 801));
    let mut ctx = ExecContext::new(llm.clone());
    let tagger = LlmModule::new(
        "tagger",
        PromptBuilder::Template {
            template:
                "Is the following phrase a person name?\nLanguage: {language}\nText: {phrase}"
                    .into(),
        },
        OutputValidator::YesNo,
    );
    let mut simulated =
        Simulated::new(Box::new(tagger), StudentKind::Binary, SimulatorConfig::default());
    let mut served = 0u64;
    for passage in &corpus {
        for name in &passage.person_names {
            let input = Data::map([
                ("phrase".to_string(), Data::Str(name.clone())),
                ("language".to_string(), Data::Str(passage.language.code().into())),
            ]);
            let _ = simulated.invoke(input, &mut ctx).unwrap();
            served += 1;
        }
    }
    let stats = simulated.stats();
    assert_eq!(stats.teacher_calls + stats.student_calls, served);
    assert!(simulated.has_taken_over(), "{stats:?}");
    assert!(stats.student_calls > served / 2, "student should carry most of the stream: {stats:?}");
    // The LLM bill is bounded by the teacher share.
    assert!(llm.usage().calls <= stats.teacher_calls + 5);
}

#[test]
fn connectors_enforce_allowlists_and_meter_exposure() {
    // Tabular: the LLM may only run the user-approved query shape.
    let table = lingua_dataset::csv::read_str(
        "products",
        "id,name,price\n1,widget,9.5\n2,gadget,19.5\n3,sprocket,2.5\n",
    )
    .unwrap();
    let mut catalog = Catalog::new();
    catalog.register(table);
    let mut connector = TabularConnector::new(catalog).allow_prefix("SELECT name FROM products");
    assert!(connector.fetch("SELECT name FROM products WHERE price < 10").is_ok());
    assert!(connector.fetch("SELECT * FROM products").is_err());
    let meter = connector.meter();
    assert_eq!(meter.queries, 1);
    assert_eq!(meter.queries_denied, 1);
    assert_eq!(meter.rows_exposed, 2);

    // Text: only the top-k relevant chunks cross the boundary.
    let mut text_connector = TextConnector::new(80, 1);
    let doc = "The quarterly budget was approved by the board after review. \
               The cafeteria introduced a new lunch menu last Tuesday. \
               Budget amendments will be filed next month by the finance team.";
    let exposed = text_connector.relevant_chunks(doc, "budget approval finance");
    assert_eq!(exposed.len(), 1);
    assert!(exposed[0].to_lowercase().contains("budget"));
    assert!(text_connector.meter().bytes_exposed < doc.len() as u64);
}

#[test]
fn llm_budget_validation_rejects_silent_fallback_code() {
    // A module that answers correctly but routes everything through the LLM
    // must fail a zero-call budget and get repaired into local rules.
    let world = WorldSpec::generate(802);
    let llm = Arc::new(SimLlm::with_seed(&world, 802));
    let mut ctx = ExecContext::new(llm);
    ctx.tools.register_list("vocabulary", vec!["Sony".into(), "Canon".into()]);
    ctx.tools.register("normalize_brand", |args| {
        Ok(args.first().cloned().unwrap_or(lingua_script::Value::Null))
    });
    // Hand-written "lazy" module: always asks the LLM.
    let spec = CodeGenSpec {
        task: "impute the missing manufacturer from the product name".into(),
        function_name: "process".into(),
        hints: vec![],
    };
    let lazy = r#"
        fn process(product) {
            if is_null(product) { return null; }
            let name = get_or(product, "name", "");
            let answer = call_llm("Fill in the missing manufacturer.\nProduct: " + name +
                "\nAnswer with only the manufacturer name.");
            return call_tool("normalize_brand", answer);
        }
    "#;
    let mut module = LlmgcModule::from_source("lazy", spec, lazy).unwrap();
    let validator = Validator::new(vec![
        TestCase::new(
            Data::map([("name".to_string(), Data::Str("Sony Vista 300 Webcam".into()))]),
            Data::Str("Sony".into()),
        ),
        TestCase::new(Data::Null, Data::Null),
    ])
    .with_budgets(4, 2)
    .with_llm_budget(0);
    let report = validator.validate_and_fix(&mut module, &mut ctx).unwrap();
    assert_eq!(report.outcome, ValidationOutcome::Passed, "{report:?}");
    // The repaired program stopped paying the LLM for easy cases.
    let calls_before = ctx.llm.usage().calls;
    assert!(validator.evaluate(&mut module, &mut ctx).is_empty());
    assert_eq!(ctx.llm.usage().calls, calls_before, "no LLM calls after repair");
}
