//! End-to-end integration: DSL text → compiled pipeline → execution over a
//! real CSV on disk → saved output, crossing every crate in the workspace.

use lingua_core::executor::Executor;
use lingua_core::prelude::*;
use lingua_core::templates::TemplateRegistry;
use lingua_dataset::csv;
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use std::collections::BTreeMap;
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lingua_it_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn dsl_pipeline_runs_end_to_end_over_csv() {
    let dir = temp_dir("pipeline");
    let input = dir.join("in.csv");
    let output = dir.join("out.csv");
    std::fs::write(&input, "name,price\nwidget,9.99\nwidget,9.99\ngadget,19.5\ndoohickey,4.25\n")
        .unwrap();

    let dsl = format!(
        r#"pipeline cleanup {{
            raw = load_csv() with {{ path: "{}" }};
            deduped = dedup_exact(raw);
            cheap = limit(deduped) with {{ n: "2" }};
            save_csv(cheap) with {{ path: "{}" }};
        }}"#,
        input.display(),
        output.display()
    );
    let pipeline = Pipeline::parse(&dsl).unwrap();
    pipeline.check_dataflow(&[]).unwrap();

    let world = WorldSpec::generate(90);
    let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 90)));
    let compiler = Compiler::with_builtins();
    let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
    let report = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap();

    // Dedup removed the duplicate widget; limit kept 2 rows.
    let result = report.get("cheap").unwrap().as_table().unwrap();
    assert_eq!(result.len(), 2);

    // The file really landed on disk and parses back.
    let saved = csv::read_path(&output).unwrap();
    assert_eq!(saved.len(), 2);
    assert_eq!(saved.schema().len(), 2);

    // No LLM involvement for a fully-classical pipeline.
    assert_eq!(report.llm_calls(), 0);
}

#[test]
fn template_pipeline_compiles_with_llmgc_and_llm_bindings() {
    let registry = TemplateRegistry::with_builtins();
    let template = registry.get("name_extraction").unwrap();

    let world = WorldSpec::generate(91);
    let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 91)));
    ctx.tools.register("stopwords", lingua_core::tools::stopwords_tool_from_world(&world));
    let compiler = Compiler::with_builtins();
    let physical = compiler.compile(&template.pipeline, &mut ctx).unwrap();

    let kinds: Vec<ModuleKind> = physical.ops.iter().map(|(_, m)| m.kind()).collect();
    assert!(kinds.contains(&ModuleKind::Llmgc), "{kinds:?}");
    assert!(kinds.contains(&ModuleKind::Llm), "{kinds:?}");
    // Code generation consumed LLM budget at compile time.
    assert!(ctx.llm.usage().calls >= 2);
}

#[test]
fn dsl_errors_surface_with_line_numbers() {
    let err = Pipeline::parse("pipeline broken {\n  x = load_csv(;\n}").unwrap_err();
    match err {
        CoreError::Dsl { line, .. } => assert_eq!(line, 2),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn executor_surfaces_module_failures_cleanly() {
    let dsl = r#"pipeline failing {
        raw = load_csv() with { path: "/definitely/not/a/file.csv" };
    }"#;
    let pipeline = Pipeline::parse(dsl).unwrap();
    let world = WorldSpec::generate(92);
    let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 92)));
    let compiler = Compiler::with_builtins();
    let mut physical = compiler.compile(&pipeline, &mut ctx).unwrap();
    let err = Executor::run(&mut physical, &mut ctx, BTreeMap::new()).unwrap_err();
    assert!(matches!(err, CoreError::Data(_)), "{err}");
}
